"""System-level tests of the baseline MESI protocol."""

import pytest

from repro.coherence.states import DirState, L1State, ProtocolMode
from repro.common.statkeys import (
    CORE_MISSES,
    CORE_UPGRADE_SENT,
    CORE_WRITEBACKS,
    SLICE_RECALLS,
)
from repro.cpu.ops import compute, fetch_add, load, store

from _helpers import memory_image, read_u, run_programs, small_config


def single(ops):
    """One-thread program from a list of ops (results discarded)."""
    def prog():
        for op in ops:
            yield op
    return prog()


class TestSingleCore:
    def test_read_fills_exclusive(self):
        def prog():
            v = yield load(0x1000)
            assert v == 0
        result, machine = run_programs([prog()])
        entry = machine.l1s[0].cache.peek(0x1000)
        assert entry.payload.state == L1State.E
        line = machine.home_slice(0x1000).llc.peek(0x1000).payload
        assert line.state == DirState.EM
        assert line.owner == 0

    def test_silent_e_to_m_on_store(self):
        def prog():
            yield load(0x1000)
            yield store(0x1000, 7)
        result, machine = run_programs([prog()])
        entry = machine.l1s[0].cache.peek(0x1000)
        assert entry.payload.state == L1State.M
        assert entry.payload.dirty
        # No extra coherence request for the silent upgrade.
        assert machine.l1s[0].stats[CORE_MISSES] == 1

    def test_store_then_load_returns_value(self):
        def prog():
            yield store(0x2000, 0xDEAD)
            v = yield load(0x2000)
            assert v == 0xDEAD
        run_programs([prog()])

    def test_rmw_returns_old_value(self):
        def prog():
            yield store(0x2000, 5)
            old = yield fetch_add(0x2000, 3, size=4)
            assert old == 5
            v = yield load(0x2000)
            assert v == 8
        run_programs([prog()])

    def test_writeback_on_eviction(self):
        cfg = small_config()
        sets = cfg.l1.num_sets
        way_span = cfg.l1.associativity + 1
        addrs = [0x10000 + i * sets * 64 for i in range(way_span)]

        def prog():
            for a in addrs:
                yield store(a, 0xAB)
            for a in addrs:
                v = yield load(a)
                assert v == 0xAB
        result, machine = run_programs([prog()], config=cfg)
        assert machine.l1s[0].stats[CORE_WRITEBACKS] >= 1
        img = memory_image(machine)
        for a in addrs:
            assert read_u(img, a) == 0xAB

    def test_mixed_sizes_on_one_line(self):
        def prog():
            yield store(0x3000, 0x11, size=1)
            yield store(0x3001, 0x22, size=1)
            yield store(0x3002, 0x3344, size=2)
            v = yield load(0x3000, size=4)
            assert v == 0x33442211
        run_programs([prog()])


class TestTwoCoreSharing:
    def test_read_sharing(self):
        def reader():
            for _ in range(5):
                v = yield load(0x1000)
                assert v == 0
                yield compute(3)
        result, machine = run_programs([reader(), reader()])
        line = machine.home_slice(0x1000).llc.peek(0x1000).payload
        assert line.state == DirState.S
        assert line.sharers == {0, 1}

    def test_ownership_migrates(self):
        log = []

        def writer(val, delay):
            def prog():
                yield compute(delay)
                yield store(0x1000, val)
                log.append(val)
            return prog()
        result, machine = run_programs([writer(1, 0), writer(2, 500)])
        line = machine.home_slice(0x1000).llc.peek(0x1000).payload
        assert line.state == DirState.EM
        assert line.owner == 1
        img = memory_image(machine)
        assert read_u(img, 0x1000) == 2

    def test_producer_consumer(self):
        def producer():
            yield store(0x1000, 99)
            yield store(0x1040, 1)  # flag on another line

        def consumer():
            while True:
                flag = yield load(0x1040)
                if flag:
                    break
                yield compute(20)
            v = yield load(0x1000)
            assert v == 99
        run_programs([producer(), consumer()])

    def test_upgrade_path(self):
        def reader_then_writer():
            yield load(0x1000)
            yield compute(50)
            yield store(0x1000, 5)

        def reader():
            yield load(0x1000)
        result, machine = run_programs([reader_then_writer(), reader()])
        assert machine.l1s[0].stats[CORE_UPGRADE_SENT] >= 1

    def test_atomic_increments_are_atomic(self):
        n = 100

        def incrementer():
            for _ in range(n):
                yield fetch_add(0x5000, 1, size=8)
        result, machine = run_programs([incrementer() for _ in range(4)])
        img = memory_image(machine)
        assert read_u(img, 0x5000, size=8) == 4 * n


class TestInclusionAndRecall:
    def test_llc_eviction_recalls_owner(self):
        # Tiny LLC: force LLC evictions of blocks still cached in L1s.
        cfg = small_config(
            llc=__import__("repro.common.config",
                           fromlist=["CacheConfig"]).CacheConfig(
                size_bytes=8 * 1024, associativity=2, tag_latency=2,
                data_latency=8),
            num_llc_slices=1)
        # Touch more blocks than the LLC holds, all dirty.
        blocks = cfg.llc.num_blocks + 8

        def prog():
            for i in range(blocks):
                yield store(0x10000 + i * 64, i + 1)
            for i in range(blocks):
                v = yield load(0x10000 + i * 64)
                assert v == i + 1
        result, machine = run_programs([prog()], config=cfg)
        assert machine.slices[0].stats[SLICE_RECALLS] >= 1
        img = memory_image(machine)
        for i in range(blocks):
            assert read_u(img, 0x10000 + i * 64) == i + 1

    def test_llc_eviction_with_sharers(self):
        cfg = small_config(
            llc=__import__("repro.common.config",
                           fromlist=["CacheConfig"]).CacheConfig(
                size_bytes=8 * 1024, associativity=2, tag_latency=2,
                data_latency=8),
            num_llc_slices=1)
        blocks = cfg.llc.num_blocks + 8

        def prog():
            for i in range(blocks):
                v = yield load(0x10000 + i * 64)
                assert v == 0
        run_programs([prog(), prog()], config=cfg)


class TestDrainInvariants:
    @pytest.mark.parametrize("mode", list(ProtocolMode))
    def test_clean_drain(self, mode):
        def prog(tid):
            def inner():
                for i in range(50):
                    yield store(0x9000 + 4 * tid, i)
                    yield compute(2)
            return inner()
        result, machine = run_programs([prog(t) for t in range(4)],
                                       mode=mode)
        for l1 in machine.l1s:
            assert l1.drain_complete()
        for sl in machine.slices:
            assert sl.drain_complete()

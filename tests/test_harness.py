"""Tests of the harness: runner, baselines, tables, experiment drivers."""

import pytest

from repro.coherence.states import ProtocolMode
from repro.harness import experiments as E
from repro.harness.baselines import run_huron, run_manual_fix
from repro.harness.runner import RunRecord, run_workload
from repro.harness.tables import format_table, geomean

SCALE = 0.12


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_identity(self):
        assert geomean([1, 1, 1]) == pytest.approx(1.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([0, 4]) == pytest.approx(4.0)


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out
        assert "3.25" in out


class TestRunner:
    def test_returns_record(self):
        rec = run_workload("ww", scale=SCALE)
        assert isinstance(rec, RunRecord)
        assert rec.cycles > 0
        assert rec.tag == "ww"

    def test_speedup_and_energy_helpers(self):
        base = run_workload("ww", scale=SCALE)
        fsl = run_workload("ww", ProtocolMode.FSLITE, scale=SCALE)
        assert fsl.speedup_over(base) > 1.0
        assert fsl.energy_vs(base) < 1.0

    def test_manual_fix_runs_padded(self):
        rec = run_manual_fix("ww", scale=SCALE)
        assert rec.layout == "padded"

    def test_huron_discount_applies_to_bs(self):
        rec = run_huron("BS", scale=SCALE)
        assert rec.extra.get("instruction_discount") == pytest.approx(0.87)

    def test_huron_partial_repair_rc(self):
        """Huron pads only one of RC's two falsely-shared arrays, so FSLite
        must beat it (the paper's Fig. 17 RC story)."""
        base = run_workload("RC", scale=0.5)
        hur = run_huron("RC", scale=0.5)
        fsl = run_workload("RC", ProtocolMode.FSLITE, scale=0.5)
        s_hur = base.cycles / hur.cycles
        s_fsl = base.cycles / fsl.cycles
        assert 1.0 < s_hur < s_fsl


class TestExperimentDrivers:
    """Smoke-level runs of each driver at tiny scale; the full-scale shape
    checks live in the benchmarks."""

    def test_fig02(self):
        r = E.fig02_manual_fix(scale=SCALE)
        assert r.rows[-1][0] == "geomean"
        assert r.summary["geomean"] > 1.0

    def test_fig13(self):
        r = E.fig13_miss_fraction(scale=SCALE)
        assert 0 < r.summary["mean"] < 0.5
        assert len(r.rows) == 9

    def test_fig15(self):
        r = E.fig15_no_fs(scale=SCALE)
        assert r.summary["speedup_geomean"] == pytest.approx(1.0, abs=0.02)

    def test_table2(self):
        r = E.table2_overheads()
        assert r.summary["overhead_fraction"] < 0.05
        assert "PAM" in r.render()

    def test_reader_opt(self):
        r = E.reader_opt(scale=SCALE)
        assert r.summary["storage_saving"] == pytest.approx(0.25, abs=0.01)

    def test_render_contains_rows(self):
        r = E.fig13_miss_fraction(scale=SCALE)
        text = r.render()
        assert "RC" in text and "mean" in text

    def test_column_accessor(self):
        r = E.fig13_miss_fraction(scale=SCALE)
        assert r.column("app")[0] == "BS"

    def test_ablation_unknown_flag(self):
        with pytest.raises(ValueError):
            E.ablation("turbo", scale=SCALE)

    def test_ablation_hysteresis_runs(self):
        r = E.ablation("hysteresis", scale=SCALE, tags=["SF"])
        assert len(r.rows) == 2

"""Tests of the chaos campaign driver (:mod:`repro.faults.chaos`).

The headline guarantee mirrors the fuzzer's: a clean protocol survives a
fault campaign (and measurably degrades, proving the injection is real),
while a known protocol mutation is caught by the campaign's oracles and
rendered as a runnable pytest repro.  Shrinking over fired-fault scripts
reuses the fuzzer's generic ddmin.
"""

import random

import pytest

from repro.check.fuzz import shrink_schedule
from repro.coherence.states import ProtocolMode
from repro.faults import CHAOS_FAMILIES, FaultEvent, FaultPlan, family_plan
from repro.faults.chaos import (
    ChaosCampaignResult,
    chaos_campaign,
    chaos_config,
    render_chaos_repro,
    render_plan,
)


class TestCampaign:
    def test_clean_protocol_survives_and_degrades(self):
        result = chaos_campaign(iterations=6, seed=0,
                                modes=[ProtocolMode.FSLITE], length=50)
        assert result.ok, [f.failure.describe() for f in result.findings]
        assert len(result.cases) == 6
        fired = result.family_fired()
        assert all(fired[f] > 0 for f in CHAOS_FAMILIES), fired
        degraded = result.family_degraded()
        assert any(degraded.values()), \
            "no family measurably degraded any run"

    def test_campaign_is_deterministic(self):
        kw = dict(iterations=4, seed=9, modes=[ProtocolMode.FSLITE],
                  length=40)
        a = chaos_campaign(**kw)
        b = chaos_campaign(**kw)
        assert [c.case_seed for c in a.cases] == \
               [c.case_seed for c in b.cases]
        assert [c.report.delta() for c in a.cases] == \
               [c.report.delta() for c in b.cases]
        assert [c.report.faults_fired for c in a.cases] == \
               [c.report.faults_fired for c in b.cases]

    def test_families_and_modes_rotate(self):
        result = chaos_campaign(iterations=6, seed=1,
                                modes=[ProtocolMode.FSLITE,
                                       ProtocolMode.FSDETECT],
                                length=30)
        fams = [c.fault_family for c in result.cases]
        assert fams[:3] == list(CHAOS_FAMILIES)
        modes = [c.mode for c in result.cases]
        assert ProtocolMode.FSLITE in modes
        assert ProtocolMode.FSDETECT in modes

    def test_mutated_protocol_is_caught(self):
        """A protocol bug makes the campaign fail: the fault-free twin
        trips the oracles and the finding renders a runnable repro that
        carries the mutation."""
        result = chaos_campaign(iterations=3, seed=7,
                                modes=[ProtocolMode.FSLITE],
                                mutation="sam-drops-writes", shrink=False)
        assert not result.ok
        finding = result.findings[0]
        assert finding.plan is None  # twin failed: not a fault problem
        assert "mutation='sam-drops-writes'" in finding.repro_source
        compile(finding.repro_source, "<chaos-repro>", "exec")


class TestShrinking:
    def test_ddmin_over_fault_events(self):
        """The fuzzer's shrinker works verbatim over FaultEvent lists:
        a failure caused by one event shrinks to exactly that event."""
        culprit = FaultEvent("pam_clear", 3)
        events = ([FaultEvent("dup_md", i) for i in range(5)]
                  + [culprit]
                  + [FaultEvent("l1_evict", i) for i in range(5)])

        def still_fails(candidate):
            return culprit in candidate

        shrunk = shrink_schedule(events, still_fails, budget=200)
        assert shrunk == [culprit]

    def test_render_plan_roundtrips_scripts(self):
        plan = FaultPlan(seed=5, state_period=24,
                         script=(FaultEvent("sam_invalidate", 1),
                                 FaultEvent("llc_evict", 0)))
        source = render_plan(plan)
        namespace = {"FaultPlan": FaultPlan, "FaultEvent": FaultEvent}
        rebuilt = eval(source, namespace)  # noqa: S307 — our own rendering
        assert rebuilt == plan

    def test_render_plan_rate_mode(self):
        plan = family_plan("pressure", seed=2)
        source = render_plan(plan)
        namespace = {"FaultPlan": FaultPlan, "FaultEvent": FaultEvent}
        rebuilt = eval(source, namespace)  # noqa: S307
        assert rebuilt.l1_evict == plan.l1_evict
        assert rebuilt.state_period == plan.state_period

    def test_rendered_repro_is_valid_python(self):
        from repro.check.fuzz import FuzzOp, make_schedule
        schedule = make_schedule("disjoint", random.Random(3), length=10)
        plan = FaultPlan(script=(FaultEvent("dup_md", 0),))
        from repro.check.fuzz import FuzzFailure
        source = render_chaos_repro(
            schedule, ProtocolMode.FSLITE, plan,
            FuzzFailure("invariant", "InvariantViolation", "synthetic"),
            case_seed=1, shrunken_sam=True)
        assert "def test_chaos_repro_fslite_seed1" in source
        assert "shrunken_sam=True" in source
        compile(source, "<chaos-repro>", "exec")


class TestConfig:
    def test_shrunken_sam_config(self):
        base = chaos_config()
        tiny = chaos_config(shrunken_sam=True)
        assert tiny.protocol.sam_sets == 1
        assert tiny.protocol.sam_ways == 2
        assert base.protocol.sam_sets * base.protocol.sam_ways > 2
        assert tiny.l1 == base.l1  # only the SAM shrinks

    def test_result_family_maps_cover_all_families(self):
        result = ChaosCampaignResult(iterations=0)
        assert set(result.family_fired()) == set(CHAOS_FAMILIES)
        assert set(result.family_degraded()) == set(CHAOS_FAMILIES)


class TestCli:
    def test_chaos_verb_clean(self, capsys):
        from repro.cli import main
        argv = ["chaos", "--iterations", "3", "--protocol", "fslite",
                "--length", "30", "--quiet"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sanitizer-clean" in out

    def test_chaos_verb_mutation_writes_repros(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "chaos_repros.py"
        argv = ["chaos", "--iterations", "3", "--protocol", "fslite",
                "--length", "40", "--mutate", "sam-drops-writes",
                "--no-shrink", "--quiet", "--out", str(out_path)]
        assert main(argv) == 1
        assert out_path.exists()
        compile(out_path.read_text(), str(out_path), "exec")
        assert "failing case" in capsys.readouterr().out

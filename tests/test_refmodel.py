"""Unit tests for the atomic reference model (repro.check.refmodel).

The reference is only worth differencing against if its own semantics are
right: atomic RMWs, ground-truth access bookkeeping, zero-filled untouched
blocks, and a fair round-robin program driver under which spin loops
terminate.
"""

import pytest

from repro.check.fuzz import FuzzOp, fuzz_config, make_schedule
from repro.check.refmodel import (
    AtomicMachine,
    run_programs_atomic,
    run_reference,
)
from repro.common.errors import SimulationError
from repro.cpu.ops import cas, fetch_add, load, store

from _helpers import small_config


BASE = 0x40000


def machine(num_threads=4):
    return AtomicMachine(small_config(), num_threads=num_threads)


def test_store_then_load():
    m = machine()
    m.execute(0, store(BASE + 8, 0xAB12, size=4))
    assert m.execute(0, load(BASE + 8, size=4)) == 0xAB12
    # Sub-word read of the same bytes (little-endian).
    assert m.execute(0, load(BASE + 8, size=1)) == 0x12


def test_untouched_blocks_read_zero():
    m = machine()
    assert m.execute(1, load(BASE, size=8)) == 0
    img = m.image()
    assert img.get(0x99999940) == bytes(64)
    assert 0x99999940 not in m.mem  # a read of a default block allocates


def test_rmw_returns_old_value_and_is_atomic():
    m = machine()
    m.execute(0, store(BASE, 5, size=8))
    assert m.execute(1, fetch_add(BASE, 3, size=8)) == 5
    assert m.execute(0, load(BASE, size=8)) == 8


def test_rmw_wraps_at_size():
    m = machine()
    m.execute(0, store(BASE, 0xFF, size=1))
    assert m.execute(0, fetch_add(BASE, 1, size=1)) == 0xFF
    assert m.execute(0, load(BASE, size=1)) == 0


def test_cas_semantics():
    m = machine()
    assert m.execute(0, cas(BASE, 0, 7, size=8)) == 0
    assert m.execute(1, cas(BASE, 0, 9, size=8)) == 7
    assert m.execute(1, load(BASE, size=8)) == 7


def test_truth_readers_writers_and_last_writer():
    m = machine()
    m.execute(0, store(BASE, 1, size=8))        # granule 0-1 written by 0
    m.execute(1, load(BASE, size=8))            # ... read by 1
    m.execute(2, store(BASE + 32, 2, size=8))   # granule 8-9 written by 2
    truth = m.truth[BASE]
    gran = m.granularity
    g0 = 0
    g32 = 32 // gran
    assert truth.writers[g0] == {0}
    assert truth.readers[g0] == {1}
    assert truth.last_writer[g0] == 0
    assert truth.writers[g32] == {2}
    assert truth.last_writer[g32] == 2
    assert truth.accessors == {0, 1, 2}


def test_rmw_counts_as_read_and_write():
    m = machine()
    m.execute(3, fetch_add(BASE, 1, size=8))
    truth = m.truth[BASE]
    assert truth.readers[0] == {3}
    assert truth.writers[0] == {3}
    assert truth.read_bits[3] == truth.write_bits[3] != 0


def test_multi_core_blocks():
    m = machine()
    m.execute(0, store(BASE, 1, size=8))
    m.execute(0, store(BASE + 64, 1, size=8))
    m.execute(1, load(BASE + 64, size=8))
    assert m.multi_core_blocks() == {BASE + 64}


def test_single_accessor_granules():
    m = machine()
    m.execute(0, store(BASE, 1, size=8))          # only core 0
    m.execute(1, fetch_add(BASE + 32, 1, size=8))  # only core 1
    m.execute(0, load(BASE + 32, size=8))          # ... now shared
    gran = m.granularity
    pairs = dict(m.single_accessor_granules(BASE))
    for g in range(8 // gran):
        assert pairs[g] == 0
    for g in range(32 // gran, 40 // gran):
        assert g not in pairs


def test_run_reference_matches_schedule_semantics():
    schedule = [
        FuzzOp(0, "store", line=0, offset=0, size=8, value=0x11),
        FuzzOp(1, "rmw", line=0, offset=32, size=8, value=3),
        FuzzOp(1, "rmw", line=0, offset=32, size=8, value=3),
        FuzzOp(0, "load", line=0, offset=0, size=8),
    ]
    ref = run_reference(schedule, num_threads=4)
    img = ref.image
    data = img.get(BASE)
    assert int.from_bytes(data[0:8], "little") == 0x11
    assert int.from_bytes(data[32:40], "little") == 6  # two fetch-adds of 3
    assert BASE in ref.multi_core_blocks()


def test_run_reference_order_sensitivity():
    """Same per-thread programs, different interleavings: the reference
    executes list order, so a store/store race resolves to the later op."""
    a = FuzzOp(0, "store", line=0, offset=0, size=8, value=1)
    b = FuzzOp(1, "rmw", line=0, offset=0, size=8, value=9)
    first = run_reference([a, b], num_threads=2).image.get(BASE)
    second = run_reference([b, a], num_threads=2).image.get(BASE)
    assert int.from_bytes(first[0:8], "little") == 10  # store 1, then +9
    assert int.from_bytes(second[0:8], "little") == 1   # +9, then store 1


def test_round_robin_driver_runs_spinlock():
    """A spinlock handoff makes progress only under fair scheduling; the
    round-robin driver must complete it."""
    lock = BASE
    counter = BASE + 64

    def worker(tid):
        while True:
            old = yield cas(lock, 0, tid + 1, size=8)
            if old == 0:
                break
        old = yield load(counter, size=8)
        yield store(counter, old + 1, size=8)
        yield store(lock, 0, size=8)

    m = run_programs_atomic([worker(t) for t in range(4)], small_config())
    data = m.image().get(counter & ~63)
    assert int.from_bytes(data[0:8], "little") == 4


def test_round_robin_driver_detects_livelock():
    def spin_forever():
        while True:
            yield load(BASE, size=8)

    with pytest.raises(SimulationError):
        run_programs_atomic([spin_forever()], small_config(), max_ops=1000)


def test_reference_is_deterministic():
    import random

    schedule = make_schedule("mixed", random.Random(42), length=60)
    ref1 = run_reference(schedule, 4, fuzz_config(4))
    ref2 = run_reference(schedule, 4, fuzz_config(4))
    assert ref1.blocks() == ref2.blocks()
    for block in ref1.blocks():
        assert ref1.image.get(block) == ref2.image.get(block)

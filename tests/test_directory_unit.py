"""Directory-slice unit tests via direct message injection.

Complements test_l1_races.py from the other side: a scripted 'core'
drives one DirectorySlice and checks its responses and state.
"""

from __future__ import annotations

import pytest

from repro.coherence.directory import DirectorySlice
from repro.coherence.states import DirState, ProtocolMode
from repro.common.config import SystemConfig
from repro.common.events import EventQueue
from repro.common.statkeys import (
    SLICE_PRIVATIZATIONS,
    SLICE_REGRANTS,
    SLICE_STALE_PUTM,
    SLICE_UPGRADES_CONVERTED,
)
from repro.interconnect.message import Message, MessageType
from repro.memsys.main_memory import MainMemory

CORES = 4
DIR_NODE = CORES
BLOCK = 0x1000
DATA = bytes(range(64))


class Harness:
    def __init__(self, mode=ProtocolMode.MESI, tau_p=16):
        self.queue = EventQueue()
        self.config = SystemConfig(num_cores=CORES, num_llc_slices=1)
        if tau_p != 16:
            self.config = self.config.with_protocol(tau_p=tau_p,
                                                    tau_r1=tau_p)

        outer = self

        class FakeNetwork:
            def __init__(self):
                self.sent = []

            def register(self, node, handler):
                outer.deliver = handler

            def send(self, msg, extra_delay=0):
                self.sent.append(msg)

        self.net = FakeNetwork()
        self.memory = MainMemory(block_size=64,
                                 latency=self.config.memory_latency)
        self.memory.write_block(BLOCK, DATA)
        self.dir = DirectorySlice(
            slice_id=0, node_id=DIR_NODE, config=self.config, mode=mode,
            queue=self.queue, network=self.net, memory=self.memory,
            num_slices=1)

    def inject(self, mtype, src, block=BLOCK, **payload):
        self.deliver(Message(mtype, src=src, dst=DIR_NODE,
                             block_addr=block, payload=payload))
        self.queue.run()

    def sent(self):
        return [(m.mtype, m.dst) for m in self.net.sent]

    def clear(self):
        self.net.sent.clear()

    def line(self, block=BLOCK):
        entry = self.dir.llc.peek(block)
        return entry.payload if entry else None


class TestBaselinePaths:
    def test_first_get_fetches_and_grants_exclusive(self):
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        assert h.sent() == [(MessageType.DATA_E, 0)]
        assert h.line().state == DirState.EM
        assert h.line().owner == 0
        last = h.net.sent[-1]
        assert bytes(last.payload["data"]) == DATA

    def test_second_get_intervenes(self):
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.clear()
        h.inject(MessageType.GET, src=1, touched_mask=0xF)
        assert h.sent() == [(MessageType.FWD_GET, 0)]
        # Owner responds with a transfer ack: both become sharers.
        h.clear()
        h.inject(MessageType.XFER_ACK, src=0, requestor=1)
        assert h.line().state == DirState.S
        assert h.line().sharers == {0, 1}

    def test_getx_to_shared_invalidates_and_collects(self):
        # Make it S with two sharers via the proper path.
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.inject(MessageType.GET, src=1, touched_mask=0xF)
        h.inject(MessageType.XFER_ACK, src=0, requestor=1)
        h.clear()
        h.inject(MessageType.GETX, src=2, touched_mask=0xF)
        dsts = {d for t, d in h.sent() if t == MessageType.INV}
        assert dsts == {0, 1}
        h.clear()
        h.inject(MessageType.INV_ACK, src=0, requestor=2)
        assert h.sent() == []  # still waiting
        h.inject(MessageType.INV_ACK, src=1, requestor=2)
        assert h.sent() == [(MessageType.DATA_E, 2)]
        assert h.line().state == DirState.EM
        assert h.line().owner == 2

    def test_upgrade_sole_sharer_immediate_ack(self):
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.inject(MessageType.GET, src=1, touched_mask=0xF)
        h.inject(MessageType.XFER_ACK, src=0, requestor=1)
        # Drop core 1 via its own upgrade after core 0 is gone... instead:
        # core 0 upgrades while both share -> INV to 1 then UPG_ACK.
        h.clear()
        h.inject(MessageType.UPGRADE, src=0, touched_mask=0xF)
        assert (MessageType.INV, 1) in h.sent()
        h.clear()
        h.inject(MessageType.INV_ACK, src=1, requestor=0)
        assert h.sent() == [(MessageType.UPG_ACK, 0)]

    def test_upgrade_from_nonsharer_converts(self):
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.clear()
        h.inject(MessageType.UPGRADE, src=1, touched_mask=0xF)
        # Converted to GetX: intervene on the owner.
        assert h.sent() == [(MessageType.FWD_GETX, 0)]
        assert h.dir.stats[SLICE_UPGRADES_CONVERTED] == 1

    def test_regrant_to_owner(self):
        h = Harness()
        h.inject(MessageType.GETX, src=0, touched_mask=0xF)
        h.clear()
        # The owner re-requests (drop-and-reissue race): idempotent regrant.
        h.inject(MessageType.GETX, src=0, touched_mask=0xF)
        assert h.sent() == [(MessageType.DATA_E, 0)]
        assert h.dir.stats[SLICE_REGRANTS] == 1

    def test_putm_from_owner(self):
        h = Harness()
        h.inject(MessageType.GETX, src=0, touched_mask=0xF)
        h.clear()
        new = bytes([7] * 64)
        h.inject(MessageType.PUTM, src=0, data=new)
        assert h.sent() == [(MessageType.WB_ACK, 0)]
        assert h.line().state == DirState.I
        assert bytes(h.line().data) == new

    def test_stale_putm_acked_and_ignored(self):
        h = Harness()
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.clear()
        h.inject(MessageType.PUTM, src=3, data=bytes(64))
        assert h.sent() == [(MessageType.WB_ACK, 3)]
        assert h.dir.stats[SLICE_STALE_PUTM] == 1
        assert bytes(h.line().data) == DATA  # untouched

    def test_queued_request_drains_after_busy(self):
        h = Harness()
        h.inject(MessageType.GETX, src=0, touched_mask=0xF)
        h.clear()
        h.inject(MessageType.GETX, src=1, touched_mask=0xF)   # busy FWD
        h.inject(MessageType.GETX, src=2, touched_mask=0xF)   # queued
        assert h.sent() == [(MessageType.FWD_GETX, 0)]
        h.clear()
        h.inject(MessageType.DATA_WB, src=0, data=DATA, requestor=1,
                 xfer=True)
        # Completing the first transaction starts the queued one.
        assert (MessageType.FWD_GETX, 1) in h.sent()


class TestDetectionPaths:
    def _ping_pong(self, h, rounds):
        """Alternate exclusive ownership between cores 0 and 1."""
        h.inject(MessageType.GETX, src=0, touched_mask=0x0F)
        for i in range(rounds):
            src, other = (1, 0) if i % 2 == 0 else (0, 1)
            h.inject(MessageType.GETX, src=src,
                     touched_mask=0x0F if src == 0 else 0xF0)
            # The old owner responds with data + metadata.
            md_read, md_write = (0x0F, 0x0F) if other == 0 else (0xF0, 0xF0)
            h.inject(MessageType.DATA_WB, src=other, data=DATA,
                     requestor=src, xfer=True)
            h.inject(MessageType.REP_MD, src=other, read_bits=md_read,
                     write_bits=md_write, solicited=True)

    def test_req_md_set_while_ts_clear(self):
        h = Harness(mode=ProtocolMode.FSDETECT)
        h.inject(MessageType.GETX, src=0, touched_mask=0x0F)
        h.clear()
        h.inject(MessageType.GETX, src=1, touched_mask=0xF0)
        fwd = h.net.sent[0]
        assert fwd.mtype == MessageType.FWD_GETX
        assert fwd.payload["req_md"] is True

    def test_fsdetect_reports_after_threshold(self):
        h = Harness(mode=ProtocolMode.FSDETECT, tau_p=4)
        self._ping_pong(h, rounds=14)
        assert h.dir.detector.reports
        assert not any(r.privatized for r in h.dir.detector.reports)

    def test_fslite_privatizes_after_threshold(self):
        h = Harness(mode=ProtocolMode.FSLITE, tau_p=4)
        self._ping_pong(h, rounds=12)
        if h.line().state != DirState.PRV:
            # Trigger request once flagged.
            h.inject(MessageType.GETX, src=0, touched_mask=0x0F)
            # Owner responds to TR_PRV with metadata.
            sent = [m for m in h.net.sent if m.mtype == MessageType.TR_PRV]
            for m in sent:
                h.inject(MessageType.REP_MD, src=m.dst, read_bits=0,
                         write_bits=0xF0 if m.dst == 1 else 0x0F,
                         solicited=True)
        assert h.dir.stats[SLICE_PRIVATIZATIONS] >= 1


class TestExternalSocket:
    def test_hook_noop_when_not_prv(self):
        h = Harness(mode=ProtocolMode.FSLITE)
        h.inject(MessageType.GET, src=0, touched_mask=0xF)
        h.dir.external_access(BLOCK)  # must not raise or change state
        assert h.line().state == DirState.EM

"""Unit tests for the directory-entry counters (Fig. 5c)."""

from repro.core.counters import DirEntryMeta


class TestFcIc:
    def test_bump_and_crossed(self):
        m = DirEntryMeta()
        for _ in range(16):
            m.bump_fc()
        assert m.fc == 16
        assert not m.crossed(16)  # IC still zero
        m.bump_ic(16)
        assert m.crossed(16)

    def test_saturation_resets_both(self):
        # "The directory controller also resets both FC and IC of a
        # directory entry if any of them saturates" (Section IV).
        m = DirEntryMeta(counter_max=127)
        m.bump_ic(50)
        for _ in range(127):
            m.bump_fc()
        assert m.fc == 0
        assert m.ic == 0

    def test_ic_saturation_resets_both(self):
        m = DirEntryMeta(counter_max=127)
        m.bump_fc()
        m.bump_ic(127)
        assert m.fc == 0 and m.ic == 0

    def test_manual_reset(self):
        m = DirEntryMeta()
        m.bump_fc()
        m.bump_ic(3)
        m.reset_fc_ic()
        assert m.fc == 0 and m.ic == 0


class TestHysteresis:
    def test_saturates_at_max(self):
        m = DirEntryMeta(hysteresis_max=3)
        for _ in range(10):
            m.bump_hc()
        assert m.hc == 3

    def test_decay_floors_at_zero(self):
        m = DirEntryMeta()
        m.decay_hc()
        assert m.hc == 0
        m.bump_hc()
        m.decay_hc()
        m.decay_hc()
        assert m.hc == 0


class TestPmmc:
    def test_expect_and_arrive(self):
        m = DirEntryMeta()
        m.expect_md({0, 1, 2})
        assert m.pmmc == 3
        assert m.md_arrived(1)
        assert m.pmmc == 2

    def test_duplicate_arrival_idempotent(self):
        m = DirEntryMeta()
        m.expect_md({0})
        assert m.md_arrived(0)
        assert not m.md_arrived(0)
        assert m.pmmc == 0

    def test_unexpected_arrival_ignored(self):
        m = DirEntryMeta()
        assert not m.md_arrived(5)
        assert m.pmmc == 0

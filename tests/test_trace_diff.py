"""Differential-oracle coverage for trace-driven input.

``diff_trace`` replays one ``.rtrace`` file through every protocol mode
and checks each detailed run against the atomic reference model — the
same oracle ``diff_workload`` applies to live workloads, but fed from the
frozen op streams of a trace.  Covered here:

* the oracle is **clean** on captured and synthesized traces across all
  three modes (memory-soundness is restricted to single-accessor granules,
  exactly as for live racy workloads);
* the oracle **catches seeded bugs** (mutation-escape probes): a
  detection-layer mutation from :mod:`repro.check.mutations` must be
  caught when driven from a false-sharing trace, proving trace replay
  exercises the same SAM/PAM machinery as live runs;
* the live and trace-driven oracles **agree** on the same workload, both
  clean and mutated.
"""

import pathlib

import pytest

from repro.check.diff import diff_trace, diff_workload
from repro.check.mutations import mutation_context
from repro.coherence.states import ProtocolMode
from repro.harness.runner import RunSpec
from repro.workloads.trace import (
    SharingProfile,
    record_trace,
    synthesize_trace,
)

TRACE_DIR = pathlib.Path(__file__).parent / "data" / "traces"


# Classic false sharing, synthesized: each thread owns a private 8-byte
# slot of the shared fs lines, so every granule is single-accessor (the
# memory compare covers them) while the *lines* ping-pong between cores
# (SAM/PAM engage).  Detection mutations cannot hide here.
_FALSE_SHARING = SharingProfile(num_threads=4, ops_per_thread=300,
                                fs_lines=2, ts_lines=0, private_lines=4,
                                fs_fraction=0.4, ts_fraction=0.0,
                                write_fraction=0.6, rmw_fraction=0.2,
                                seed=7)

_MIXED = SharingProfile(num_threads=4, ops_per_thread=250,
                        fs_lines=2, ts_lines=1, private_lines=4,
                        fs_fraction=0.3, ts_fraction=0.1, seed=11)


def test_diff_clean_on_captured_trace():
    report = diff_trace(TRACE_DIR / "RC_fsdetect.rtrace")
    assert report.ok, report.describe()
    assert set(report.modes_run) == set(ProtocolMode)
    assert report.blocks_compared > 0


@pytest.mark.parametrize("profile", [_FALSE_SHARING, _MIXED],
                         ids=["false-sharing", "mixed"])
def test_diff_clean_on_synthesized_trace(profile, tmp_path):
    path = tmp_path / "synth.rtrace"
    synthesize_trace(profile, path)
    report = diff_trace(path)
    assert report.ok, report.describe()
    assert set(report.modes_run) == set(ProtocolMode)


@pytest.mark.parametrize("mutation,mode", [
    ("sam-drops-writes", ProtocolMode.FSLITE),
    ("pam-reads-count-as-writes", ProtocolMode.FSDETECT),
])
def test_mutation_escape_probe(mutation, mode, tmp_path):
    """Seeded detection bugs must not escape the oracle under trace-driven
    input.  ``sam-drops-writes`` corrupts repaired bytes (caught by the
    single-accessor memory compare under FSLITE); ``pam-reads-count-as-
    writes`` inflates write metadata (caught by the PAM subset check under
    FSDETECT).  A probe that stops failing here means the oracle lost
    coverage of that layer, not that the bug became harmless."""
    path = tmp_path / "probe.rtrace"
    synthesize_trace(_FALSE_SHARING, path)
    clean = diff_trace(path, modes=[mode])
    assert clean.ok, \
        f"probe trace must be clean unmutated: {clean.describe()}"
    mutated = diff_trace(path, modes=[mode], mutation=mutation)
    assert not mutated.ok, \
        f"mutation {mutation!r} escaped the trace-driven oracle"


def test_trace_and_workload_oracles_agree(tmp_path):
    """Live and trace-driven oracles give the same verdict on the same
    workload: clean on the unmutated run, divergent under the same seeded
    bug.  The workload's own ``verify`` is disabled so the *differential*
    compare (not the workload's self-check) is what does the catching on
    the live side, matching what the trace side has available."""
    spec = RunSpec(tag="ww", mode=ProtocolMode.FSLITE, scale=0.1, seed=3,
                   verify=False)
    path = tmp_path / "ww.rtrace"
    record_trace(spec, path)

    assert diff_workload(spec).ok
    assert diff_trace(path, modes=[ProtocolMode.FSLITE]).ok

    with mutation_context("sam-drops-writes"):
        live = diff_workload(spec)
    traced = diff_trace(path, modes=[ProtocolMode.FSLITE],
                        mutation="sam-drops-writes")
    assert not live.ok and not traced.ok, (
        "sam-drops-writes must be caught by both oracles: "
        f"live={live.ok} traced={traced.ok}")

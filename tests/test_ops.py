"""Unit tests for the memory-operation helpers."""

import pytest

from repro.cpu.ops import (
    Op,
    OpKind,
    cas,
    compute,
    fence,
    fetch_add,
    load,
    rmw,
    store,
)


class TestConstruction:
    def test_load_defaults(self):
        op = load(0x1000)
        assert op.kind == OpKind.LOAD
        assert op.size == 4
        assert op.is_memory and not op.is_write

    def test_store(self):
        op = store(0x1000, 42, size=8)
        assert op.is_write
        assert op.value == 42
        assert not op.need_value

    def test_compute_not_memory(self):
        op = compute(10)
        assert not op.is_memory
        assert op.cycles == 10

    def test_fence(self):
        assert fence().kind == OpKind.FENCE

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            load(0x1000, size=3)

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            load(0x1001, size=4)

    def test_rmw_requires_modify(self):
        with pytest.raises(ValueError):
            Op(OpKind.RMW, addr=0, size=4)


class TestRmwHelpers:
    def test_fetch_add_wraps(self):
        op = fetch_add(0, delta=1, size=1)
        assert op.modify(255) == 0

    def test_fetch_add_modify(self):
        op = fetch_add(0, delta=5)
        assert op.modify(10) == 15

    def test_cas_success(self):
        op = cas(0, expect=0, new=1)
        assert op.modify(0) == 1

    def test_cas_failure_keeps_old(self):
        op = cas(0, expect=0, new=1)
        assert op.modify(7) == 7

    def test_rmw_is_write(self):
        assert rmw(0, lambda v: v).is_write

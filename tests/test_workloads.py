"""Tests of the benchmark proxies (Table III) and microbenchmarks."""

import pytest

from repro.coherence.states import ProtocolMode
from repro.harness.runner import run_workload
from repro.workloads.base import WorkloadResultError
from repro.workloads.layout import MemoryLayout
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FS_WORKLOADS,
    MICROBENCHMARKS,
    NO_FS_WORKLOADS,
    REGISTRY,
    make_workload,
)

SCALE = 0.15  # keep per-test runtimes small


class TestRegistry:
    def test_fourteen_table3_workloads(self):
        assert len(ALL_WORKLOADS) == 14
        assert len(FS_WORKLOADS) == 8
        assert len(NO_FS_WORKLOADS) == 6

    def test_fs_flags_match_grouping(self):
        for tag in FS_WORKLOADS:
            assert REGISTRY[tag].has_false_sharing, tag
        for tag in NO_FS_WORKLOADS:
            assert not REGISTRY[tag].has_false_sharing, tag

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            make_workload("XX")

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError):
            make_workload("RC", layout="weird")

    def test_programs_one_per_thread(self):
        w = make_workload("RC", num_threads=3, scale=0.01)
        assert len(w.programs()) == 3


class TestLayout:
    def test_packed_slots_share_a_line(self):
        lay = MemoryLayout()
        slots = lay.alloc_slots("s", 4, 8, padded=False)
        assert len({s // 64 for s in slots}) == 1

    def test_padded_slots_one_per_line(self):
        lay = MemoryLayout()
        slots = lay.alloc_slots("s", 4, 8, padded=True)
        assert len({s // 64 for s in slots}) == 4

    def test_private_regions_line_separated(self):
        lay = MemoryLayout()
        a = lay.alloc_private("a", 10)
        b = lay.alloc_private("b", 10)
        assert a // 64 != (b + 9) // 64

    def test_alignment(self):
        lay = MemoryLayout()
        assert lay.alloc_line("l") % 64 == 0
        assert lay.alloc("x", 4, align=16) % 16 == 0


@pytest.mark.parametrize("tag", ALL_WORKLOADS + MICROBENCHMARKS)
class TestEveryWorkloadRuns:
    def test_runs_and_verifies_under_mesi(self, tag):
        run_workload(tag, ProtocolMode.MESI, scale=SCALE)

    def test_runs_and_verifies_under_fslite(self, tag):
        run_workload(tag, ProtocolMode.FSLITE, scale=SCALE)


@pytest.mark.parametrize("tag", FS_WORKLOADS)
class TestFalseSharingWorkloads:
    def test_padded_layout_verifies(self, tag):
        run_workload(tag, layout="padded", scale=SCALE)

    def test_huron_layout_verifies(self, tag):
        run_workload(tag, layout="huron", scale=SCALE)

    def test_detected_under_fsdetect(self, tag):
        # SC's false-sharing volume is tiny (the paper notes it barely
        # registers); it needs the full run length to cross thresholds.
        scale = 1.0 if tag == "SC" else 0.4
        record = run_workload(tag, ProtocolMode.FSDETECT, scale=scale)
        assert record.stats.reports, f"{tag}: nothing detected"

    def test_repaired_under_fslite(self, tag):
        scale = 1.0 if tag == "SC" else 0.4
        record = run_workload(tag, ProtocolMode.FSLITE, scale=scale)
        assert record.stats.privatizations >= 1


@pytest.mark.parametrize("tag", NO_FS_WORKLOADS)
class TestNoFalseSharingWorkloads:
    def test_never_privatized(self, tag):
        record = run_workload(tag, ProtocolMode.FSLITE, scale=0.4)
        assert record.stats.privatizations == 0

    def test_fslite_overhead_negligible(self, tag):
        base = run_workload(tag, ProtocolMode.MESI, scale=0.3)
        fsl = run_workload(tag, ProtocolMode.FSLITE, scale=0.3)
        assert abs(fsl.cycles - base.cycles) / base.cycles < 0.02


class TestWorkloadSemantics:
    def test_rc_fslite_beats_manual(self):
        base = run_workload("RC")
        fsl = run_workload("RC", ProtocolMode.FSLITE)
        man = run_workload("RC", layout="padded")
        assert base.cycles / fsl.cycles > base.cycles / man.cycles > 1.5

    def test_lr_init_pattern_still_privatizes(self):
        """Thread 0 writes everyone's accumulators first; the τR resets
        must clear that apparent true sharing so privatization happens."""
        record = run_workload("LR", ProtocolMode.FSLITE, scale=0.5)
        assert record.stats.privatizations >= 1

    def test_sf_interspersed_sharing_terminates(self):
        record = run_workload("SF", ProtocolMode.FSLITE, scale=0.8)
        terms = record.stats.terminations
        assert terms["conflict"] + terms["init_abort"] >= 1

    def test_verify_catches_corruption(self):
        """The verification plumbing itself must be able to fail."""
        from repro.system.builder import build_machine
        from repro.system.simulator import Simulator, flush_machine_memory
        from repro.common.config import SystemConfig
        w = make_workload("ww", scale=0.1)
        machine = build_machine(SystemConfig(num_cores=4),
                                ProtocolMode.MESI)
        machine.attach_programs(w.programs())
        Simulator(machine).run()
        img = flush_machine_memory(machine)
        img[w.slots[0] & ~63] = bytes(64)  # corrupt
        with pytest.raises(WorkloadResultError):
            w.verify(img)

    def test_deterministic_across_runs(self):
        a = run_workload("LL", ProtocolMode.FSLITE, scale=0.2)
        b = run_workload("LL", ProtocolMode.FSLITE, scale=0.2)
        assert a.cycles == b.cycles
        assert a.stats.total_messages == b.stats.total_messages

    def test_seed_changes_random_streams(self):
        a = make_workload("CA", scale=0.2, seed=0)
        b = make_workload("CA", scale=0.2, seed=1)
        assert [a._rngs[0].randrange(1 << 30) for _ in range(8)] != \
               [b._rngs[0].randrange(1 << 30) for _ in range(8)]

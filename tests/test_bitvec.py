"""Unit tests for bit-vector helpers."""

from hypothesis import given, strategies as st

from repro.common.bitvec import bit_count, bits_set, iter_set_bits, mask_for_range


class TestMaskForRange:
    def test_simple(self):
        assert mask_for_range(0, 4) == 0xF

    def test_offset(self):
        assert mask_for_range(4, 4) == 0xF0

    def test_zero_length(self):
        assert mask_for_range(5, 0) == 0


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_full_byte(self):
        assert bit_count(0xFF) == 8

    @given(st.integers(min_value=0, max_value=2**128))
    def test_matches_bin_count(self, v):
        assert bit_count(v) == bin(v).count("1")


class TestBitsSet:
    def test_subset(self):
        assert bits_set(0xFF, 0x0F)

    def test_not_subset(self):
        assert not bits_set(0xF0, 0x0F)

    def test_empty_mask(self):
        assert bits_set(0, 0)


class TestIterSetBits:
    def test_empty(self):
        assert list(iter_set_bits(0)) == []

    def test_bits(self):
        assert list(iter_set_bits(0b1011)) == [0, 1, 3]

    @given(st.sets(st.integers(min_value=0, max_value=200)))
    def test_roundtrip(self, indices):
        value = sum(1 << i for i in indices)
        assert set(iter_set_bits(value)) == indices

"""Unit tests for configuration dataclasses and validation."""

import pytest

from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_table2_l1_geometry(self):
        l1 = CacheConfig(size_bytes=32 * 1024, associativity=8)
        assert l1.num_blocks == 512
        assert l1.num_sets == 64

    def test_table2_llc_geometry(self):
        llc = CacheConfig(size_bytes=16 * 1024 * 1024, associativity=16)
        assert llc.num_blocks == 256 * 1024

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, associativity=2, block_size=48)

    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, associativity=3)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, associativity=1, tag_latency=-1)


class TestProtocolConfig:
    def test_paper_defaults(self):
        p = ProtocolConfig()
        assert p.tau_p == 16
        assert p.tau_r1 == 16
        assert p.tau_r2 == 127
        assert p.counter_max == 127
        assert p.sam_entries == 128

    def test_rejects_tau_r2_below_r1(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(tau_r1=50, tau_r2=20)

    def test_rejects_unreachable_threshold(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(tau_p=200, counter_max=127)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(tracking_granularity=3)

    @pytest.mark.parametrize("gran", [1, 2, 4])
    def test_valid_granularities(self, gran):
        assert ProtocolConfig(tracking_granularity=gran)


class TestSystemConfig:
    def test_defaults_match_table2(self):
        cfg = SystemConfig()
        d = cfg.describe()
        assert d["cores"] == 8
        assert d["l1d_kb"] == 32
        assert d["llc_mb"] == 16
        assert d["block_size"] == 64
        assert d["tau_p"] == 16

    def test_with_protocol_replaces(self):
        cfg = SystemConfig().with_protocol(tau_p=32)
        assert cfg.protocol.tau_p == 32
        assert SystemConfig().protocol.tau_p == 16  # original untouched

    def test_with_l1_size(self):
        cfg = SystemConfig().with_l1_size(128 * 1024)
        assert cfg.l1.size_bytes == 128 * 1024
        assert cfg.l1.associativity == 8

    def test_rejects_mismatched_block_sizes(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                l1=CacheConfig(size_bytes=1024, associativity=1,
                               block_size=32),
                llc=CacheConfig(size_bytes=4096, associativity=1,
                                block_size=64))

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)


class TestEnergyConfig:
    def test_defaults_positive(self):
        e = EnergyConfig()
        assert e.l1_read_nj > 0
        assert e.dram_access_nj > e.llc_read_nj > e.l1_read_nj

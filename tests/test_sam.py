"""Unit and property tests for the SAM table (Section IV/VI, Fig. 5b)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sam import SamEntry, SamTable


def entry(reader_opt=False, granules=8, cores=4):
    return SamEntry(num_granules=granules, num_cores=cores,
                    reader_opt=reader_opt)


class TestUpdateFromMd:
    """The Section IV true-sharing conditions."""

    def test_disjoint_writers_no_conflict(self):
        e = entry()
        assert not e.update_from_md(0, read_bits=0, write_bits=0b0001)
        assert not e.update_from_md(1, read_bits=0, write_bits=0b0010)
        assert not e.ts

    def test_write_write_same_byte_conflicts(self):
        e = entry()
        e.update_from_md(0, 0, 0b0001)
        assert e.update_from_md(1, 0, 0b0001)
        assert e.ts

    def test_read_after_foreign_write_conflicts(self):
        e = entry()
        e.update_from_md(0, 0, 0b0001)
        assert e.update_from_md(1, 0b0001, 0)
        assert e.ts

    def test_write_after_foreign_read_conflicts(self):
        e = entry()
        e.update_from_md(0, 0b0001, 0)
        assert e.update_from_md(1, 0, 0b0001)
        assert e.ts

    def test_own_read_write_no_conflict(self):
        e = entry()
        assert not e.update_from_md(0, 0b0011, 0b0011)
        assert not e.update_from_md(0, 0b0011, 0b0011)

    def test_shared_readonly_no_conflict(self):
        e = entry()
        for core in range(4):
            assert not e.update_from_md(core, 0b1111, 0)
        assert not e.ts

    def test_same_core_rewrite_no_conflict(self):
        e = entry()
        e.update_from_md(2, 0, 0b0100)
        assert not e.update_from_md(2, 0, 0b0100)


class TestPrvChecks:
    """The Section V-B GetCHK/GetXCHK predicates."""

    def test_write_ok_untouched(self):
        assert entry().check_write(0, 0b0001)

    def test_write_ok_own_last_writer(self):
        e = entry()
        e.record_write(0, 0b0001)
        assert e.check_write(0, 0b0001)

    def test_write_blocked_foreign_writer(self):
        e = entry()
        e.record_write(1, 0b0001)
        assert not e.check_write(0, 0b0001)

    def test_write_blocked_foreign_reader(self):
        e = entry()
        e.record_read(1, 0b0001)
        assert not e.check_write(0, 0b0001)

    def test_write_ok_self_reader(self):
        e = entry()
        e.record_read(0, 0b0001)
        assert e.check_write(0, 0b0001)

    def test_read_ok_no_writer(self):
        e = entry()
        e.record_read(1, 0b0001)  # readers don't block reads
        assert e.check_read(0, 0b0001)

    def test_read_blocked_foreign_writer(self):
        e = entry()
        e.record_write(1, 0b0001)
        assert not e.check_read(0, 0b0001)

    def test_read_ok_own_writer(self):
        e = entry()
        e.record_write(0, 0b0001)
        assert e.check_read(0, 0b0001)

    def test_multigranule_mask_all_must_pass(self):
        e = entry()
        e.record_write(1, 0b0010)
        assert not e.check_write(0, 0b0011)
        assert e.check_write(0, 0b0001)


class TestReaderOptEncoding:
    """Last-reader + overflow (Section VI) must be conservative: it may
    report spurious conflicts, never miss a real one."""

    def test_single_reader_tracked(self):
        e = entry(reader_opt=True)
        e.record_read(1, 0b0001)
        # The single tracked reader may write its own byte...
        assert e.check_write(1, 0b0001)
        # ...but a different core may not.
        assert not e.check_write(0, 0b0001)

    def test_overflow_blocks_everyone(self):
        e = entry(reader_opt=True)
        e.record_read(1, 0b0001)
        e.record_read(2, 0b0001)
        # Overflow set: even core 2 (the last reader) now sees a foreign
        # reader, which is the conservative behaviour.
        assert not e.check_write(3, 0b0001)

    def test_same_reader_twice_no_overflow(self):
        e = entry(reader_opt=True)
        e.record_read(1, 0b0001)
        e.record_read(1, 0b0001)
        assert e.check_write(1, 0b0001)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans(),
                              st.integers(1, 0xFF)),
                    min_size=1, max_size=20),
           st.integers(0, 3), st.integers(1, 0xFF))
    def test_property_opt_conservative(self, history, core, mask):
        """Whenever the full encoding flags a conflict, the optimized one
        must too (on identical access histories)."""
        full, opt = entry(reader_opt=False), entry(reader_opt=True)
        for actor, is_write, m in history:
            if is_write:
                full.record_write(actor, m)
                opt.record_write(actor, m)
            else:
                full.record_read(actor, m)
                opt.record_read(actor, m)
        if not full.check_write(core, mask):
            assert not opt.check_write(core, mask)
        if not full.check_read(core, mask):
            assert not opt.check_read(core, mask)
        # Reads are writer-based only: identical in both encodings.
        assert full.check_read(core, mask) == opt.check_read(core, mask)


class TestLifecycle:
    def test_clear_resets_everything(self):
        e = entry()
        e.update_from_md(0, 0b1, 0b10)
        e.update_from_md(1, 0, 0b10)
        assert e.ts
        e.clear()
        assert not e.ts
        assert e.check_write(3, 0xFF)

    def test_remove_core_clears_writer(self):
        e = entry()
        e.record_write(1, 0b0001)
        e.remove_core(1)
        assert e.check_write(0, 0b0001)

    def test_remove_core_clears_reader_full_mode(self):
        e = entry()
        e.record_read(1, 0b0001)
        e.remove_core(1)
        assert e.check_write(0, 0b0001)

    def test_remove_core_conservative_in_opt_mode(self):
        e = entry(reader_opt=True)
        e.record_read(1, 0b0001)
        e.remove_core(1)
        # The encoding cannot remove readers; the spurious block is allowed.
        assert not e.check_write(0, 0b0001)

    def test_last_writer_map_snapshot(self):
        e = entry()
        e.record_write(2, 0b0101)
        snap = e.last_writer_map()
        e.record_write(3, 0b0101)
        assert snap[0] == 2 and snap[2] == 2
        assert e.last_writer[0] == 3


class TestEntryBits:
    def test_paper_basic_size(self):
        # 8 cores, 64 byte-granules: (8+1+3)*64 + 1 = 769 bits.
        e = SamEntry(num_granules=64, num_cores=8)
        assert e.entry_bits() == 769

    def test_paper_optimized_size(self):
        # (3+2 + 1+3)*64 + 1 = 577 bits, a 25% saving.
        e = SamEntry(num_granules=64, num_cores=8, reader_opt=True)
        assert e.entry_bits() == 577
        full = SamEntry(num_granules=64, num_cores=8).entry_bits()
        assert 1 - e.entry_bits() / full == pytest.approx(0.25, abs=0.01)


class TestSamTable:
    def make(self, sets=2, ways=2):
        return SamTable(sets=sets, ways=ways, block_size=64, num_granules=64,
                        num_cores=4)

    def test_allocate_get(self):
        t = self.make()
        e, evb, eve = t.allocate(0x1000)
        assert evb is None
        assert t.get(0x1000) is e

    def test_allocate_existing_returns_same(self):
        t = self.make()
        e1, _, _ = t.allocate(0)
        e2, _, _ = t.allocate(0)
        assert e1 is e2
        assert t.allocations == 1

    def test_eviction_reported(self):
        t = self.make(sets=1, ways=1)
        t.allocate(0)
        _, evicted_block, evicted_entry = t.allocate(64)
        assert evicted_block == 0
        assert evicted_entry is not None
        assert t.valid_replacements == 1

    def test_replacement_rate(self):
        t = self.make(sets=1, ways=1)
        t.allocate(0)
        t.allocate(64)
        assert t.replacement_rate == 0.5

    def test_invalidate(self):
        t = self.make()
        t.allocate(0)
        assert t.invalidate(0) is not None
        assert t.peek(0) is None

"""System-level tests of FSDetect detection and FSLite repair."""

import pytest

from repro.coherence.states import DirState, ProtocolMode, TerminationCause
from repro.common.config import CacheConfig
from repro.cpu.ops import compute, fetch_add, load, store

from _helpers import memory_image, read_u, run_programs, small_config

LINE = 0x10000


def slot_writer(off, n, pause=3):
    def prog():
        for i in range(n):
            yield store(LINE + off, i + 1)
            yield compute(pause)
    return prog()


def true_sharer(n, pause=3):
    def prog():
        for _ in range(n):
            yield fetch_add(LINE, 1, size=8)
            yield compute(pause)
    return prog()


class TestDetection:
    def test_false_sharing_detected_and_reported(self):
        result, machine = run_programs(
            [slot_writer(4 * t, 200) for t in range(4)],
            mode=ProtocolMode.FSDETECT)
        reports = result.stats.reports
        assert reports, "no false-sharing reports"
        assert all(r.block_addr == LINE for r in reports)
        assert not any(r.privatized for r in reports)
        # Detection must see the real set of cores.
        assert reports[0].cores <= {0, 1, 2, 3}

    def test_true_sharing_not_reported(self):
        result, machine = run_programs(
            [true_sharer(200) for _ in range(4)],
            mode=ProtocolMode.FSDETECT)
        assert result.stats.reports == []

    def test_fsdetect_does_not_privatize(self):
        result, machine = run_programs(
            [slot_writer(4 * t, 200) for t in range(4)],
            mode=ProtocolMode.FSDETECT)
        assert result.stats.privatizations == 0
        line = machine.home_slice(LINE).llc.peek(LINE).payload
        assert line.state != DirState.PRV

    def test_detection_negligible_overhead(self):
        base, _ = run_programs([slot_writer(4 * t, 150) for t in range(4)],
                               mode=ProtocolMode.MESI)
        det, _ = run_programs([slot_writer(4 * t, 150) for t in range(4)],
                              mode=ProtocolMode.FSDETECT)
        assert det.cycles <= base.cycles * 1.06

    def test_read_write_false_sharing_detected(self):
        def reader(off, n):
            def prog():
                for _ in range(n):
                    yield load(LINE + off)
                    yield compute(3)
            return prog()
        result, _ = run_programs(
            [slot_writer(0, 200), reader(4, 200), reader(8, 200)],
            mode=ProtocolMode.FSDETECT)
        assert result.stats.reports


class TestRepair:
    def test_privatization_eliminates_misses(self):
        base, _ = run_programs([slot_writer(4 * t, 300) for t in range(4)])
        fsl, machine = run_programs(
            [slot_writer(4 * t, 300) for t in range(4)],
            mode=ProtocolMode.FSLITE)
        assert fsl.stats.privatizations >= 1
        assert fsl.cycles < base.cycles * 0.5
        assert fsl.stats.l1_miss_rate < base.stats.l1_miss_rate / 5

    def test_merged_values_correct(self):
        result, machine = run_programs(
            [slot_writer(4 * t, 300) for t in range(4)],
            mode=ProtocolMode.FSLITE)
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 4 * t) == 300

    def test_true_sharing_never_privatized(self):
        result, machine = run_programs([true_sharer(300) for _ in range(4)],
                                       mode=ProtocolMode.FSLITE)
        assert result.stats.privatizations == 0
        img = memory_image(machine)
        assert read_u(img, LINE, size=8) == 1200

    def test_prv_state_at_directory(self):
        def forever_writer(off):
            def prog():
                for i in range(400):
                    yield store(LINE + off, i)
                    yield compute(2)
            return prog()
        result, machine = run_programs(
            [forever_writer(8 * t) for t in range(4)],
            mode=ProtocolMode.FSLITE)
        line = machine.home_slice(LINE).llc.peek(LINE).payload
        assert line.state == DirState.PRV
        assert line.prv_sharers <= {0, 1, 2, 3}

    def test_mixed_rmw_and_plain_slots(self):
        def rmw_writer(off, n):
            def prog():
                for _ in range(n):
                    yield fetch_add(LINE + off, 1, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs(
            [rmw_writer(8 * t, 250) for t in range(4)],
            mode=ProtocolMode.FSLITE)
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 8 * t, size=8) == 250


class TestTerminationCauses:
    def test_conflict_terminates(self):
        """Privatize on disjoint slots, then introduce a true conflict."""
        def worker(tid):
            def prog():
                for i in range(150):
                    yield store(LINE + 8 * tid, i + 1, size=8)
                    yield compute(2)
                # Phase 2: everyone writes slot 0 -> byte conflict.
                yield fetch_add(LINE, 1, size=8)
                for i in range(20):
                    yield store(LINE + 8 * tid, 999, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs([worker(t) for t in range(4)],
                                       mode=ProtocolMode.FSLITE)
        assert result.stats.privatizations >= 1
        terms = result.stats.terminations
        assert terms["conflict"] + terms["init_abort"] >= 1
        img = memory_image(machine)
        # Slot 0 got 150 stores from t0 (last value 999) + 4 atomic adds in
        # between; the final value must be 999 (t0's phase-2 store).
        assert read_u(img, LINE, size=8) == 999

    def test_sam_eviction_terminates(self):
        cfg = small_config().with_protocol(sam_sets=1, sam_ways=2)

        def sweeper(tid):
            def prog():
                # Falsely share many lines so SAM entries get displaced.
                for i in range(400):
                    line = LINE + (i % 16) * 128  # slice-0 lines
                    yield store(line + 8 * tid, i + 1, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs([sweeper(t) for t in range(4)],
                                       mode=ProtocolMode.FSLITE, config=cfg)
        assert result.stats.terminations["sam_eviction"] >= 1

    def test_llc_eviction_terminates_and_merges(self):
        cfg = small_config(
            llc=CacheConfig(size_bytes=4 * 1024, associativity=2,
                            tag_latency=2, data_latency=8),
            num_llc_slices=1)

        def worker(tid):
            def prog():
                # Privatize one hot line...
                for i in range(120):
                    yield store(LINE + 8 * tid, i + 1, size=8)
                    yield compute(2)
                # ...then stream enough blocks to evict it from the LLC.
                base = 0x80000 + tid * 0x8000
                for i in range(80):
                    yield store(base + i * 64, tid + 1)
                # Come back and keep writing: value continuity must hold.
                for i in range(20):
                    yield store(LINE + 8 * tid, 1000 + i, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs([worker(t) for t in range(4)],
                                       mode=ProtocolMode.FSLITE, config=cfg)
        assert result.stats.terminations["llc_eviction"] >= 1
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 8 * t, size=8) == 1019

    def test_external_socket_hook(self):
        def worker(tid):
            def prog():
                for i in range(200):
                    yield store(LINE + 8 * tid, i + 1, size=8)
                    yield compute(2)
            return prog()
        cfg = small_config()
        from repro.system.builder import build_machine
        from repro.system.simulator import Simulator
        machine = build_machine(cfg, ProtocolMode.FSLITE)
        machine.attach_programs([worker(t) for t in range(4)])
        home = machine.home_slice(LINE)
        # Trigger the external-socket termination mid-run.
        machine.queue.schedule(20000, lambda: home.external_access(LINE))
        result = Simulator(machine).run()
        stats_terms = result.stats.terminations
        assert (stats_terms["external_socket"] >= 1
                or result.stats.privatizations == 0)

    def test_l1_eviction_of_prv_merges_per_core(self):
        """A PRV copy evicted from one L1 merges that core's bytes only."""
        cfg = small_config(
            l1=CacheConfig(size_bytes=1024, associativity=2))

        def worker(tid):
            def prog():
                for i in range(100):
                    yield store(LINE + 8 * tid, i + 1, size=8)
                    yield compute(2)
                # Force L1 evictions by touching conflicting lines.
                span = cfg.l1.num_sets * 64
                for i in range(6):
                    yield load(0x40000 + tid * 0x4000 + i * span)
                for i in range(50):
                    yield store(LINE + 8 * tid, 200 + i, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs([worker(t) for t in range(4)],
                                       mode=ProtocolMode.FSLITE, config=cfg)
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 8 * t, size=8) == 249


class TestJoinAndRejoin:
    def test_late_joiner_gets_private_copy(self):
        def early(tid):
            def prog():
                for i in range(250):
                    yield store(LINE + 8 * tid, i + 1, size=8)
                    yield compute(2)
            return prog()

        def late():
            def prog():
                yield compute(8000)
                for i in range(60):
                    yield store(LINE + 24, i + 1, size=8)
                    yield compute(2)
            return prog()
        result, machine = run_programs([early(0), early(1), early(2),
                                        late()], mode=ProtocolMode.FSLITE)
        assert result.stats.privatizations >= 1
        joins = sum(s["prv_joins"] for s in result.stats.per_slice)
        assert joins >= 1
        img = memory_image(machine)
        assert read_u(img, LINE + 24, size=8) == 60


class TestGranularityModes:
    @pytest.mark.parametrize("gran", [1, 2, 4])
    def test_correctness_at_all_granularities(self, gran):
        cfg = small_config().with_protocol(tracking_granularity=gran)
        result, machine = run_programs(
            [slot_writer(8 * t, 200) for t in range(4)],
            mode=ProtocolMode.FSLITE, config=cfg)
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 8 * t) == 200

    def test_subgranule_conflict_detected_at_coarse_grain(self):
        """Two cores writing different bytes of the SAME 4-byte granule
        must be treated as (conservative) true sharing at 4-byte grain."""
        cfg = small_config().with_protocol(tracking_granularity=4)

        def byte_writer(off):
            def prog():
                for i in range(200):
                    yield store(LINE + off, i & 0xFF, size=1)
                    yield compute(2)
            return prog()
        result, machine = run_programs([byte_writer(0), byte_writer(1)],
                                       mode=ProtocolMode.FSLITE, config=cfg)
        # Bytes 0 and 1 share granule 0: never privatizable at this grain.
        line = machine.home_slice(LINE).llc.peek(LINE).payload
        assert line.state != DirState.PRV


class TestReaderOptMode:
    def test_reader_opt_same_privatizations(self):
        progs = lambda: [slot_writer(8 * t, 250) for t in range(4)]
        full, _ = run_programs(progs(), mode=ProtocolMode.FSLITE)
        cfg = small_config().with_protocol(reader_metadata_opt=True)
        opt, machine = run_programs(progs(), mode=ProtocolMode.FSLITE,
                                    config=cfg)
        assert full.stats.privatizations == opt.stats.privatizations
        img = memory_image(machine)
        for t in range(4):
            assert read_u(img, LINE + 8 * t) == 250

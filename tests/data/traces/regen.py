"""Regenerate the golden-trace conformance corpus.

Run from the repo root::

    PYTHONPATH=src python tests/data/traces/regen.py

For each (workload, protocol mode) pair the script records the live run
into a committed ``.rtrace`` file and pins, in ``manifest.json``:

* the **replay spec digest** (manifest key) — ``trace_spec(file).digest()``,
  which is path-independent (only the trace *content* digest is hashed),
  so the manifest is valid from any checkout location;
* the trace content digest and total op count;
* the live run's cycle count, message total and canonical stats sha256.

``tests/test_trace_golden.py`` then asserts that replaying each committed
trace is stats-digest-identical to the live workload under the same mode.
One trace is recorded *per mode* because thread programs are
value-dependent (spin loops, CAS retries): a trace captured under MESI
replays cycle-identically under MESI but is not an identity oracle for
FSDETECT, whose interleaving differs.

The corpus spans the four paper workloads exercised by the repo's golden
identity table tier (RC, LL, LT, BS) plus two synthetic sharing patterns
(ww, is), all at ``scale=0.1`` and ``seed=0`` so the files stay a few KB.
"""

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent

TAGS = ["RC", "LL", "LT", "BS", "ww", "is"]
MODES = ["mesi", "fsdetect", "fslite"]
SCALE = 0.1
SEED = 0


def main() -> int:
    from repro.coherence.states import ProtocolMode
    from repro.harness.export import record_stats_digest
    from repro.harness.runner import RunSpec
    from repro.workloads.trace import record_trace, trace_spec

    manifest = {}
    for tag in TAGS:
        for mode in MODES:
            name = f"{tag}_{mode}.rtrace"
            path = HERE / name
            spec = RunSpec(tag=tag, mode=ProtocolMode(mode), scale=SCALE,
                           seed=SEED)
            info, record = record_trace(spec, path)
            replay = trace_spec(path)
            manifest[replay.digest()] = {
                "file": name,
                "tag": tag,
                "mode": mode,
                "scale": SCALE,
                "seed": SEED,
                "num_threads": info.num_threads,
                "trace_digest": info.digest,
                "total_ops": info.total_ops,
                "cycles": record.cycles,
                "msgs_total": record.stats.network["msgs_total"],
                "stats_sha256": record_stats_digest(record),
            }
            print(f"{name:22s} ops={info.total_ops:6d} "
                  f"cycles={record.cycles:6d} digest={info.digest[:12]}")

    out = HERE / "manifest.json"
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(manifest)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

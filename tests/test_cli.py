"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RC" in out and "fig14" in out

    def test_run(self, capsys):
        assert main(["run", "ww", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_run_fslite_csv(self, capsys, tmp_path):
        path = tmp_path / "r.csv"
        assert main(["run", "ww", "--protocol", "fslite", "--scale", "0.1",
                     "--csv", str(path)]) == 0
        assert path.exists()

    def test_compare(self, capsys):
        assert main(["compare", "ww", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fslite" in out and "manual-fix" in out

    def test_detect(self, capsys):
        assert main(["detect", "ww", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "false-sharing instance" in out

    def test_detect_contended(self, capsys):
        assert main(["detect", "ts", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "contended truly-shared" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "PAM" in out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_ooo_core(self, capsys):
        assert main(["run", "ww", "--core", "ooo", "--scale", "0.1"]) == 0

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RC" in out and "fig14" in out

    def test_run(self, capsys):
        assert main(["run", "ww", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_run_fslite_csv(self, capsys, tmp_path):
        path = tmp_path / "r.csv"
        assert main(["run", "ww", "--protocol", "fslite", "--scale", "0.1",
                     "--csv", str(path)]) == 0
        assert path.exists()

    def test_compare(self, capsys):
        assert main(["compare", "ww", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fslite" in out and "manual-fix" in out

    def test_detect(self, capsys):
        assert main(["detect", "ww", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "false-sharing instance" in out

    def test_detect_contended(self, capsys):
        assert main(["detect", "ts", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "contended truly-shared" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "PAM" in out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_ooo_core(self, capsys):
        assert main(["run", "ww", "--core", "ooo", "--scale", "0.1"]) == 0


class TestTraceCli:
    """The trace verbs: record a live workload, inspect the file, replay
    it through the engine — end to end through ``main``."""

    @pytest.fixture()
    def recorded(self, tmp_path, capsys):
        path = tmp_path / "ww.rtrace"
        assert main(["trace-record", "ww", "--scale", "0.1",
                     "--protocol", "fslite", "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_trace_record(self, tmp_path, capsys):
        path = tmp_path / "t.rtrace"
        assert main(["trace-record", "ww", "--scale", "0.1",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert path.exists()
        assert "op(s)" in out and "trace" in out and "replay" in out

    def test_trace_info(self, recorded, capsys):
        assert main(["trace-info", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "threads" in out and "ww" in out and "fslite" in out

    def test_trace_info_quick_skips_scan(self, recorded, capsys):
        assert main(["trace-info", str(recorded), "--quick"]) == 0
        assert "threads" in capsys.readouterr().out

    def test_trace_run_replays_capture_mode(self, recorded, capsys):
        assert main(["trace-run", str(recorded), "--check"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "fslite" in out

    def test_trace_run_mode_override(self, recorded, capsys):
        assert main(["trace-run", str(recorded),
                     "--protocol", "mesi"]) == 0
        assert "mesi" in capsys.readouterr().out

    def test_trace_run_rejects_corrupt_file(self, recorded, capsys):
        blob = bytearray(recorded.read_bytes())
        blob[-10] ^= 0xFF
        bad = recorded.parent / "bad.rtrace"
        bad.write_bytes(bytes(blob))
        assert main(["trace-run", str(bad), "--check"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_info_rejects_garbage(self, tmp_path, capsys):
        junk = tmp_path / "junk.rtrace"
        junk.write_bytes(b"not a trace at all")
        assert main(["trace-info", str(junk)]) == 1
        assert "error:" in capsys.readouterr().err

"""Tests for CSV export and sweep utilities."""

import csv
import io

from repro.coherence.states import ProtocolMode
from repro.harness.export import (
    experiment_to_csv,
    flatten_record,
    records_to_csv,
)
from repro.harness.runner import run_workload
from repro.harness.sweep import sweep_l1_size, sweep_protocol_knob

SCALE = 0.1


class TestExport:
    def test_flatten_has_core_fields(self):
        rec = run_workload("ww", scale=SCALE)
        row = flatten_record(rec)
        assert row["tag"] == "ww"
        assert row["protocol"] == "mesi"
        assert row["cycles"] == rec.cycles
        assert "term_conflict" in row

    def test_records_to_csv_roundtrip(self):
        recs = [run_workload("ww", scale=SCALE),
                run_workload("ww", ProtocolMode.FSLITE, scale=SCALE)]
        text = records_to_csv(recs)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["protocol"] == "mesi"
        assert rows[1]["protocol"] == "fslite"
        assert int(rows[1]["privatizations"]) >= 1

    def test_records_to_csv_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        records_to_csv([run_workload("ww", scale=SCALE)], str(path))
        assert path.exists()
        assert "cycles" in path.read_text()

    def test_empty_records(self):
        assert records_to_csv([]) == ""

    def test_experiment_to_csv(self):
        from repro.harness.experiments import table2_overheads
        text = experiment_to_csv(table2_overheads())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["structure", "value"]
        assert len(rows) > 3


class TestSweep:
    def test_protocol_knob_sweep(self):
        res = sweep_protocol_knob(
            "tau_p", [16, 64], tags=["ww"], scale=0.3,
            paired_knobs=lambda v: {"tau_r1": v})
        assert set(res.records) == {16, 64}
        rel = res.speedup_vs(16)
        assert rel[16]["ww"] == 1.0
        # Higher threshold delays privatization: never faster.
        assert rel[64]["ww"] <= 1.02

    def test_metric_extraction(self):
        res = sweep_protocol_knob("tau_p", [16], tags=["ww"], scale=0.2,
                                  paired_knobs=lambda v: {"tau_r1": v})
        miss = res.metric(lambda r: r.l1_miss_rate)
        assert 0 <= miss[16]["ww"] < 1

    def test_l1_size_sweep(self):
        res = sweep_l1_size([32, 128], tags=["BL"], scale=0.1)
        assert set(res.records) == {32, 128}
        assert res.records[32]["BL"].cycles > 0

    def test_sweep_carries_specs_and_shares_engine_cache(self, tmp_path):
        from repro.harness.engine import Engine
        engine = Engine(cache_dir=tmp_path)
        res = sweep_protocol_knob(
            "tau_p", [16, 64], tags=["ww"], scale=0.2,
            paired_knobs=lambda v: {"tau_r1": v}, engine=engine)
        assert set(res.specs) == {16, 64}
        assert res.specs[64]["ww"].config.protocol.tau_p == 64
        assert res.records[64]["ww"].spec == res.specs[64]["ww"]
        assert engine.stats["executed"] == 2
        assert len(res.all_records()) == 2
        # A repeat of the same sweep is served entirely from the cache.
        sweep_protocol_knob(
            "tau_p", [16, 64], tags=["ww"], scale=0.2,
            paired_knobs=lambda v: {"tau_r1": v}, engine=engine)
        assert engine.stats["executed"] == 2
        assert engine.stats["cache_hits"] == 2
